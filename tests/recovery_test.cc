// Failure-recovery metric edge cases (satellite of the correlated-storm work).
//
// AnalyzeFailureRecovery feeds the fig15/fig16 pass/fail gates, so its degenerate
// inputs must be pinned: an empty completion series with real faults is a dead system
// (recovered = false, fault-to-horizon charged), a fault landing with less than one
// full pre-fault window falls back to the whole-series mean as its baseline, and
// back-to-back faults merge into one episode instead of double-counting the dip.
#include <gtest/gtest.h>

#include <vector>

#include "src/metrics/recovery.h"

namespace flexpipe {
namespace {

// Steady `rps` completions over [begin, end) with a fixed small latency.
std::vector<CompletionSample> SteadyCompletions(TimeNs begin, TimeNs end, double rps) {
  std::vector<CompletionSample> completions;
  const TimeNs step = static_cast<TimeNs>(static_cast<double>(kSecond) / rps);
  for (TimeNs t = begin; t < end; t += step) {
    completions.push_back({t, 50 * kMillisecond});
  }
  return completions;
}

TEST(FailureRecoveryEdge, EmptySeriesWithFaultsIsADeadSystem) {
  FailureRecoveryReport report =
      AnalyzeFailureRecovery({}, {10 * kSecond}, /*horizon=*/60 * kSecond);
  EXPECT_EQ(report.fault_count, 1);
  EXPECT_FALSE(report.recovered);
  EXPECT_DOUBLE_EQ(report.pre_fault_goodput_rps, 0.0);
  // The never-ending episode charges fault-to-horizon, so a dead arm always reports a
  // worse time-to-recover than any arm that served anything at all.
  EXPECT_NEAR(report.time_to_recover_s, 50.0, 1e-9);
  EXPECT_NEAR(report.total_recovery_s, 50.0, 1e-9);
}

TEST(FailureRecoveryEdge, FaultAtTimeZeroFallsBackToWholeSeriesMean) {
  // No pre-fault window exists at all (base_count == 0): the baseline must fall back
  // to the whole-series mean instead of reading 0 and short-circuiting.
  std::vector<CompletionSample> completions =
      SteadyCompletions(5 * kSecond, 60 * kSecond, 10.0);
  FailureRecoveryReport report =
      AnalyzeFailureRecovery(completions, {0}, /*horizon=*/60 * kSecond);
  EXPECT_EQ(report.fault_count, 1);
  // 550 completions over 60 windows ~ 9.2 rps.
  EXPECT_NEAR(report.pre_fault_goodput_rps, 550.0 / 60.0, 1e-6);
  // Steady 10 rps clears 0.95x of that mean once service starts, so the episode closes.
  EXPECT_TRUE(report.recovered);
  EXPECT_GT(report.time_to_recover_s, 0.0);
  // The 5 silent leading seconds are genuine dip area against the mean baseline.
  EXPECT_GT(report.dip_area_rps_s, 0.0);
}

TEST(FailureRecoveryEdge, ShortPreFaultSpanStillYieldsABaseline) {
  // Only 2 seconds of history before the fault — far less than the 30s lookback. The
  // baseline must come from those two windows alone, not read partial-lookback zeros.
  std::vector<CompletionSample> completions = SteadyCompletions(0, 60 * kSecond, 10.0);
  std::vector<CompletionSample> dipped;
  for (const CompletionSample& c : completions) {
    if (c.done_time < 2 * kSecond || c.done_time >= 6 * kSecond) {
      dipped.push_back(c);
    }
  }
  FailureRecoveryReport report =
      AnalyzeFailureRecovery(dipped, {2 * kSecond}, /*horizon=*/60 * kSecond);
  EXPECT_NEAR(report.pre_fault_goodput_rps, 10.0, 0.5);
  EXPECT_TRUE(report.recovered);
  EXPECT_NEAR(report.dip_area_rps_s, 40.0, 5.0);  // 4 silent seconds at 10 rps
}

TEST(FailureRecoveryEdge, BackToBackFaultsMergeIntoOneEpisode) {
  // Two faults 3 seconds apart inside one outage: the second lands in the open episode
  // and must extend it (reset the recovery streak), not start a second episode.
  std::vector<CompletionSample> completions;
  for (const CompletionSample& c : SteadyCompletions(0, 60 * kSecond, 10.0)) {
    if (c.done_time < 20 * kSecond || c.done_time >= 26 * kSecond) {
      completions.push_back(c);
    }
  }
  FailureRecoveryReport merged = AnalyzeFailureRecovery(
      completions, {20 * kSecond, 23 * kSecond}, /*horizon=*/60 * kSecond);
  EXPECT_EQ(merged.fault_count, 2);
  EXPECT_TRUE(merged.recovered);
  // One merged episode: the summed recovery time equals the worst episode's.
  EXPECT_DOUBLE_EQ(merged.total_recovery_s, merged.time_to_recover_s);

  // The same completion series with two separated outages yields two episodes whose
  // recovery times sum — distinguishing merge from double-count.
  std::vector<CompletionSample> two_dips;
  for (const CompletionSample& c : SteadyCompletions(0, 80 * kSecond, 10.0)) {
    bool in_first = c.done_time >= 20 * kSecond && c.done_time < 25 * kSecond;
    bool in_second = c.done_time >= 50 * kSecond && c.done_time < 55 * kSecond;
    if (!in_first && !in_second) {
      two_dips.push_back(c);
    }
  }
  FailureRecoveryReport separate = AnalyzeFailureRecovery(
      two_dips, {20 * kSecond, 50 * kSecond}, /*horizon=*/80 * kSecond);
  EXPECT_EQ(separate.fault_count, 2);
  EXPECT_TRUE(separate.recovered);
  EXPECT_GT(separate.total_recovery_s, separate.time_to_recover_s);
}

TEST(FailureRecoveryEdge, ImpactOverloadFillsShedRateAndSurvivability) {
  std::vector<CompletionSample> completions = SteadyCompletions(0, 60 * kSecond, 10.0);
  FailureImpact impact;
  impact.submitted = 400;
  impact.requests_shed = 100;
  impact.instances_lost = 4;
  impact.whole_pipeline_losses = 1;
  FailureRecoveryReport report = AnalyzeFailureRecovery(
      completions, {20 * kSecond}, /*horizon=*/60 * kSecond, impact);
  EXPECT_DOUBLE_EQ(report.shed_rate, 0.25);
  EXPECT_DOUBLE_EQ(report.domain_survivability, 0.75);

  // Division-by-zero guards: no submissions -> no shed rate; no losses -> perfect
  // survivability (there was nothing to survive).
  FailureRecoveryReport clean = AnalyzeFailureRecovery(
      completions, {20 * kSecond}, /*horizon=*/60 * kSecond, FailureImpact{});
  EXPECT_DOUBLE_EQ(clean.shed_rate, 0.0);
  EXPECT_DOUBLE_EQ(clean.domain_survivability, 1.0);
}

TEST(FailureRecoveryEdge, DegradedSpansFoldIntoFaultSeriesAndSumClamped) {
  // Steady 10 rps with a shallow dip starting at t=30s: no fail-stop fault ever
  // fired, but a degradation episode opened there — the overload must treat the
  // episode start as a fault so the TTR/dip machinery sees the gray failure.
  std::vector<CompletionSample> completions = SteadyCompletions(0, 30 * kSecond, 10.0);
  std::vector<CompletionSample> slow = SteadyCompletions(30 * kSecond, 60 * kSecond, 4.0);
  completions.insert(completions.end(), slow.begin(), slow.end());

  FailureImpact impact;
  impact.degraded_spans.push_back({30 * kSecond, 50 * kSecond});
  FailureRecoveryReport report = AnalyzeFailureRecovery(
      completions, /*fault_times=*/{}, /*horizon=*/60 * kSecond, impact);
  EXPECT_EQ(report.fault_count, 1);  // the episode start became the fault
  EXPECT_GT(report.dip_area_rps_s, 0.0);
  EXPECT_DOUBLE_EQ(report.degraded_span_s, 20.0);

  // A span still open at end of run (clear <= start) charges up to the horizon, and
  // spans past the horizon are clamped to it.
  FailureImpact open;
  open.degraded_spans.push_back({30 * kSecond, 0});
  open.degraded_spans.push_back({40 * kSecond, 500 * kSecond});
  FailureRecoveryReport charged = AnalyzeFailureRecovery(
      completions, /*fault_times=*/{}, /*horizon=*/60 * kSecond, open);
  EXPECT_EQ(charged.fault_count, 2);
  EXPECT_DOUBLE_EQ(charged.degraded_span_s, 30.0 + 20.0);

  // No spans -> the overload stays bit-compatible with the fail-stop-only path.
  FailureRecoveryReport none = AnalyzeFailureRecovery(
      completions, {30 * kSecond}, /*horizon=*/60 * kSecond, FailureImpact{});
  EXPECT_DOUBLE_EQ(none.degraded_span_s, 0.0);
}

}  // namespace
}  // namespace flexpipe
