// Fault-injection and recovery tests: the cluster-level fault primitives, the seeded
// storm builders, the goodput-dip recovery metric, and the end-to-end contracts the
// fig15 bench relies on — bit-identical storm replay at a fixed seed, exactly-once
// requeue of displaced requests (submitted == completed after the drain), partition
// heals restoring routability, and an armed-but-empty fault plan perturbing nothing
// (the mechanism behind the untouched fig9/fig13 golden signatures).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/cluster/topology.h"
#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"
#include "src/metrics/recovery.h"
#include "src/sim/auditor.h"
#include "src/sim/faults.h"
#include "src/sim/simulation.h"

namespace flexpipe {
namespace {

// -- Fault plan builders ------------------------------------------------------------------

TEST(FaultPlanTest, SingleServerAndRackPartitionShapes) {
  FaultPlan server = FaultPlan::SingleServer(5 * kSecond, /*server=*/3);
  ASSERT_EQ(server.events.size(), 1u);
  EXPECT_EQ(server.events[0].when, 5 * kSecond);
  EXPECT_EQ(server.events[0].kind, FaultKind::kServerFailure);
  EXPECT_EQ(server.events[0].target, 3);

  FaultPlan healing = FaultPlan::RackPartition(10 * kSecond, /*rack=*/1, 4 * kSecond);
  ASSERT_EQ(healing.events.size(), 2u);
  EXPECT_EQ(healing.events[0].kind, FaultKind::kRackPartition);
  EXPECT_EQ(healing.events[1].kind, FaultKind::kRackHeal);
  EXPECT_EQ(healing.events[1].when, 14 * kSecond);

  FaultPlan permanent = FaultPlan::RackPartition(10 * kSecond, /*rack=*/1, 0);
  EXPECT_EQ(permanent.events.size(), 1u);
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlanTest, FleetChurnIsSeededAndSpaced) {
  Cluster cluster(EvalClusterConfig());
  int gpu_servers = 0;
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    if (!cluster.server(s).gpus.empty()) {
      ++gpu_servers;
    }
  }

  FaultPlan a = FaultPlan::FleetChurn(10 * kSecond, kSecond, 0.10, cluster, 99);
  FaultPlan b = FaultPlan::FleetChurn(10 * kSecond, kSecond, 0.10, cluster, 99);
  ASSERT_EQ(a.events.size(), static_cast<size_t>(gpu_servers / 10));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].when, 10 * kSecond + static_cast<TimeNs>(i) * kSecond);
    EXPECT_EQ(a.events[i].kind, FaultKind::kServerFailure);
    EXPECT_EQ(a.events[i].target, b.events[i].target);  // same seed, same victims
  }
  // Victims are drawn without replacement.
  std::vector<int32_t> targets;
  for (const FaultEvent& e : a.events) {
    targets.push_back(e.target);
  }
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(std::adjacent_find(targets.begin(), targets.end()), targets.end());

  // A different seed reshuffles the victim sample.
  FaultPlan c = FaultPlan::FleetChurn(10 * kSecond, kSecond, 0.10, cluster, 100);
  bool any_differs = false;
  for (size_t i = 0; i < c.events.size(); ++i) {
    any_differs = any_differs || c.events[i].target != a.events[i].target;
  }
  EXPECT_TRUE(any_differs);
}

TEST(FaultPlanTest, PowerDomainOutageShapeAndStaggeredHeals) {
  Cluster cluster(EvalClusterConfig());
  const std::vector<RackId>& racks = cluster.PowerDomainRacks(1);
  ASSERT_FALSE(racks.empty());

  FaultPlan plan =
      FaultPlan::PowerDomainOutage(10 * kSecond, /*domain=*/1, cluster,
                                   /*heal_after=*/5 * kSecond, /*heal_stagger=*/2 * kSecond);
  ASSERT_EQ(plan.events.size(), 1u + racks.size());
  EXPECT_EQ(plan.events[0].when, 10 * kSecond);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kPowerDomainOutage);
  EXPECT_EQ(plan.events[0].target, 1);
  // Heals are per-rack, staggered in rack-id order: breakers reset a branch at a time.
  for (size_t i = 0; i < racks.size(); ++i) {
    const FaultEvent& heal = plan.events[1 + i];
    EXPECT_EQ(heal.kind, FaultKind::kRackHeal);
    EXPECT_EQ(heal.target, racks[i]);
    EXPECT_EQ(heal.when, 15 * kSecond + static_cast<TimeNs>(i) * 2 * kSecond);
  }

  FaultPlan permanent =
      FaultPlan::PowerDomainOutage(10 * kSecond, 1, cluster, /*heal_after=*/0);
  EXPECT_EQ(permanent.events.size(), 1u);
}

TEST(FaultPlanTest, ThermalCascadeIsSeededQuenchedAndMonotone) {
  Cluster cluster(EvalClusterConfig());
  ASSERT_GT(cluster.thermal_zone_count(), 4);
  const ThermalZoneId seed_zone = cluster.thermal_zone_count() / 2;

  // Same (cluster, seed) -> the exact same cascade schedule.
  FaultPlan a = FaultPlan::ThermalCascade(5 * kSecond, seed_zone, cluster, 0.7,
                                          2 * kSecond, 10 * kSecond, 17);
  FaultPlan b = FaultPlan::ThermalCascade(5 * kSecond, seed_zone, cluster, 0.7,
                                          2 * kSecond, 10 * kSecond, 17);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].when, b.events[i].when);
    EXPECT_EQ(a.events[i].kind, FaultKind::kThermalZoneFailure);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
  }

  // Spread factor 0: the cascade never leaves the seed zone.
  FaultPlan cold = FaultPlan::ThermalCascade(5 * kSecond, seed_zone, cluster, 0.0,
                                             2 * kSecond, 10 * kSecond, 17);
  ASSERT_EQ(cold.events.size(), 1u);
  EXPECT_EQ(cold.events[0].target, seed_zone);

  // Spread factor 1 is fully deterministic: each generation infects both linear
  // neighbours of the frontier until cooling quenches at start + quench_after, so
  // every event time is a whole number of intervals before the quench, each zone
  // dies at most once, and times never decrease.
  FaultPlan hot = FaultPlan::ThermalCascade(5 * kSecond, seed_zone, cluster, 1.0,
                                            2 * kSecond, 6 * kSecond, 17);
  EXPECT_EQ(hot.events.size(), 5u);  // seed, then ±1, then ±2 (quench stops step 3)
  std::vector<int32_t> zones;
  for (size_t i = 0; i < hot.events.size(); ++i) {
    EXPECT_LT(hot.events[i].when, 5 * kSecond + 6 * kSecond);
    EXPECT_EQ((hot.events[i].when - 5 * kSecond) % (2 * kSecond), 0);
    if (i > 0) {
      EXPECT_GE(hot.events[i].when, hot.events[i - 1].when);
    }
    zones.push_back(hot.events[i].target);
  }
  std::sort(zones.begin(), zones.end());
  EXPECT_EQ(std::adjacent_find(zones.begin(), zones.end()), zones.end());
}

// -- Cluster fault primitives -------------------------------------------------------------

TEST(ClusterFaultTest, FailedGpuLeavesIndexButKeepsAccounting) {
  Cluster cluster(EvalClusterConfig());
  const GpuId victim = 0;
  cluster.gpu(victim).Reserve(GiB(10), 0.3);
  ASSERT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());

  cluster.SetGpuFailed(victim);
  EXPECT_TRUE(cluster.GpuFailed(victim));
  EXPECT_FALSE(cluster.GpuUsable(victim));
  EXPECT_EQ(cluster.failed_gpu_count(), 1);

  std::vector<GpuId> free = cluster.GpusWithFreeMemory(GiB(1));
  EXPECT_EQ(std::find(free.begin(), free.end(), victim), free.end());
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());

  // The owning system still releases what it reserved: Reserve/Release stays balanced
  // through the failure and the index (which already excludes the GPU) stays clean.
  cluster.gpu(victim).Release(GiB(10), 0.3);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(ClusterFaultTest, ServerFailureKillsEveryGpu) {
  Cluster cluster(EvalClusterConfig());
  ServerId victim = -1;
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    if (cluster.server(s).gpus.size() > 1) {
      victim = s;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  cluster.SetServerFailed(victim);
  for (GpuId g : cluster.server(victim).gpus) {
    EXPECT_TRUE(cluster.GpuFailed(g));
    EXPECT_FALSE(cluster.GpuUsable(g));
  }
  EXPECT_EQ(cluster.failed_gpu_count(),
            static_cast<int>(cluster.server(victim).gpus.size()));
  EXPECT_EQ(cluster.server_max_free(victim), 0);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(ClusterFaultTest, RackPartitionQuarantinesAndHealRestores) {
  Cluster cluster(EvalClusterConfig());
  const RackId rack = 0;
  std::vector<GpuId> rack_gpus;
  for (ServerId s : cluster.rack(rack).servers) {
    for (GpuId g : cluster.server(s).gpus) {
      rack_gpus.push_back(g);
    }
  }
  ASSERT_FALSE(rack_gpus.empty());
  const size_t usable_before = cluster.GpusWithFreeMemory(GiB(1)).size();

  cluster.SetRackReachable(rack, false);
  EXPECT_FALSE(cluster.RackReachable(rack));
  EXPECT_EQ(cluster.failed_gpu_count(), 0);  // partitioned, not dead
  for (GpuId g : rack_gpus) {
    EXPECT_FALSE(cluster.GpuUsable(g));
    EXPECT_FALSE(cluster.GpuFailed(g));
  }
  EXPECT_EQ(cluster.GpusWithFreeMemory(GiB(1)).size(), usable_before - rack_gpus.size());
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());

  cluster.SetRackReachable(rack, true);
  for (GpuId g : rack_gpus) {
    EXPECT_TRUE(cluster.GpuUsable(g));
  }
  EXPECT_EQ(cluster.GpusWithFreeMemory(GiB(1)).size(), usable_before);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(ClusterFaultTest, PowerDomainOutageIsOneAtomicLossAndHealsRestore) {
  Simulation sim;
  Cluster cluster(EvalClusterConfig());
  std::vector<GpuId> domain_gpus;
  for (RackId r : cluster.PowerDomainRacks(0)) {
    for (ServerId s : cluster.rack(r).servers) {
      for (GpuId g : cluster.server(s).gpus) {
        domain_gpus.push_back(g);
      }
    }
  }
  ASSERT_FALSE(domain_gpus.empty());

  FaultInjector injector(&sim, &cluster);
  std::vector<std::vector<GpuId>> losses;
  injector.AddGpuLossListener(
      [&losses](const std::vector<GpuId>& lost) { losses.push_back(lost); });
  injector.Arm(FaultPlan::PowerDomainOutage(kSecond, /*domain=*/0, cluster,
                                            /*heal_after=*/2 * kSecond,
                                            /*heal_stagger=*/kSecond));
  sim.RunUntilIdle();

  // The whole domain dropped in ONE listener call — a pipeline spanning both racks
  // observes the full correlated loss atomically, not as two partial losses.
  ASSERT_EQ(losses.size(), 1u);
  EXPECT_EQ(losses[0].size(), domain_gpus.size());
  // Partitioned, not dead — and after the staggered heals everything is usable again.
  EXPECT_EQ(cluster.failed_gpu_count(), 0);
  for (GpuId g : domain_gpus) {
    EXPECT_TRUE(cluster.GpuUsable(g));
  }
  EXPECT_EQ(injector.faults_fired(),
            1 + static_cast<int>(cluster.PowerDomainRacks(0).size()));
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(ClusterFaultTest, ThermalZoneFailureKillsTheZonePermanently) {
  Simulation sim;
  Cluster cluster(EvalClusterConfig());
  const ThermalZoneId zone = 1;
  int zone_gpu_count = 0;
  for (ServerId s : cluster.ThermalZoneServers(zone)) {
    zone_gpu_count += static_cast<int>(cluster.server(s).gpus.size());
  }

  FaultInjector injector(&sim, &cluster);
  FaultPlan plan;
  plan.events.push_back({kSecond, FaultKind::kThermalZoneFailure, zone});
  injector.Arm(plan);
  sim.RunUntilIdle();

  EXPECT_EQ(cluster.failed_gpu_count(), zone_gpu_count);
  EXPECT_EQ(injector.gpus_lost(), zone_gpu_count);
  for (ServerId s : cluster.ThermalZoneServers(zone)) {
    EXPECT_EQ(cluster.server_max_free(s), 0);
    for (GpuId g : cluster.server(s).gpus) {
      EXPECT_TRUE(cluster.GpuFailed(g));
    }
  }
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(ClusterFaultTest, ComposedHealAndKillOrderingReportsLossesExactlyOnce) {
  Simulation sim;
  Cluster cluster(EvalClusterConfig());
  const RackId rack = 0;
  ASSERT_GE(cluster.rack(rack).servers.size(), 2u);
  // Two GPU-bearing servers in the partitioned rack.
  ServerId killed_while_down = kInvalidServer;
  ServerId killed_after_heal = kInvalidServer;
  for (ServerId s : cluster.rack(rack).servers) {
    if (cluster.server(s).gpus.empty()) {
      continue;
    }
    if (killed_while_down == kInvalidServer) {
      killed_while_down = s;
    } else if (killed_after_heal == kInvalidServer) {
      killed_after_heal = s;
    }
  }
  ASSERT_NE(killed_while_down, kInvalidServer);
  ASSERT_NE(killed_after_heal, kInvalidServer);

  FaultPlan plan;
  plan.events.push_back({1 * kSecond, FaultKind::kRackPartition, rack});
  // Killed mid-partition: its GPUs were already reported unusable, so this fires no
  // second loss notification — but the server is dead for good.
  plan.events.push_back({1500 * kMillisecond, FaultKind::kServerFailure, killed_while_down});
  plan.events.push_back({2 * kSecond, FaultKind::kRackHeal, rack});
  // Killed after the heal: its GPUs were usable again, so this IS a fresh loss.
  plan.events.push_back({3 * kSecond, FaultKind::kServerFailure, killed_after_heal});

  FaultInjector injector(&sim, &cluster);
  std::vector<std::vector<GpuId>> losses;
  injector.AddGpuLossListener(
      [&losses](const std::vector<GpuId>& lost) { losses.push_back(lost); });
  injector.Arm(plan);
  sim.RunUntilIdle();

  int rack_gpus = 0;
  for (ServerId s : cluster.rack(rack).servers) {
    rack_gpus += static_cast<int>(cluster.server(s).gpus.size());
  }
  const int dead_a = static_cast<int>(cluster.server(killed_while_down).gpus.size());
  const int dead_b = static_cast<int>(cluster.server(killed_after_heal).gpus.size());
  ASSERT_EQ(losses.size(), 2u);  // partition, then the post-heal kill; mid-partition kill is silent
  EXPECT_EQ(static_cast<int>(losses[0].size()), rack_gpus);
  EXPECT_EQ(static_cast<int>(losses[1].size()), dead_b);
  EXPECT_EQ(cluster.failed_gpu_count(), dead_a + dead_b);
  // The mid-partition death survives the heal: only genuinely healthy GPUs returned.
  for (GpuId g : cluster.server(killed_while_down).gpus) {
    EXPECT_FALSE(cluster.GpuUsable(g));
  }
  for (GpuId g : cluster.server(killed_after_heal).gpus) {
    EXPECT_FALSE(cluster.GpuUsable(g));
  }
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

// -- Goodput-dip recovery metric ----------------------------------------------------------

TEST(FailureRecoveryMetricTest, MeasuresDipDepthAreaAndRecoveryTime) {
  // Steady 10 rps, a 5-second outage at t=20s, then full rate again.
  std::vector<CompletionSample> completions;
  for (TimeNs t = 0; t < 60 * kSecond; t += 100 * kMillisecond) {
    if (t >= 20 * kSecond && t < 25 * kSecond) {
      continue;
    }
    completions.push_back({t, 50 * kMillisecond});
  }
  FailureRecoveryReport report = AnalyzeFailureRecovery(
      completions, {20 * kSecond}, /*horizon=*/60 * kSecond);
  EXPECT_EQ(report.fault_count, 1);
  EXPECT_TRUE(report.recovered);
  EXPECT_NEAR(report.pre_fault_goodput_rps, 10.0, 0.5);
  EXPECT_NEAR(report.time_to_recover_s, 5.0, 1.5);
  EXPECT_NEAR(report.dip_depth_rps, 10.0, 0.5);
  EXPECT_NEAR(report.dip_area_rps_s, 50.0, 10.0);
}

TEST(FailureRecoveryMetricTest, NeverRecoveringOutageIsReported) {
  std::vector<CompletionSample> completions;
  for (TimeNs t = 0; t < 20 * kSecond; t += 100 * kMillisecond) {
    completions.push_back({t, 50 * kMillisecond});
  }
  FailureRecoveryReport report = AnalyzeFailureRecovery(
      completions, {20 * kSecond}, /*horizon=*/60 * kSecond);
  EXPECT_EQ(report.fault_count, 1);
  EXPECT_FALSE(report.recovered);
  // The open episode charges its span to the horizon: strictly worse than any arm
  // that actually recovered within the series.
  EXPECT_NEAR(report.time_to_recover_s, 40.0, 1.5);
}

TEST(FailureRecoveryMetricTest, NoFaultsIsTriviallyRecovered) {
  FailureRecoveryReport report = AnalyzeFailureRecovery({}, {}, 60 * kSecond);
  EXPECT_EQ(report.fault_count, 0);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.dip_area_rps_s, 0.0);
}

// -- End-to-end storms --------------------------------------------------------------------

ExperimentEnvConfig SmallEnvConfig() {
  ExperimentEnvConfig config;
  config.models = {Llama2_7B()};
  config.partitioner.ladder = {2, 4, 8, 16};
  config.seed = 7;
  return config;
}

FlexPipeConfig SmallFlexPipeConfig() {
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  return config;
}

// Longer decodes than the audit-test workload so a mid-run fault reliably lands while
// requests are mid-decode (the interesting recovery case).
std::vector<RequestSpec> StormWorkload() {
  WorkloadGenerator::Config wconfig;
  wconfig.lengths.prompt_median = 256;
  wconfig.lengths.output_median = 64;
  WorkloadGenerator gen(wconfig);
  Rng rng(3);
  return gen.GenerateWithCv(rng, /*rate=*/4.0, /*cv=*/4.0, 30 * kSecond);
}

struct StormOutcome {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t events = 0;  // engine events net of the debug-build auditor's own
  ServingSystemBase::FailureStats stats;
  int faults_fired = 0;
  int gpus_lost = 0;
  std::vector<TimeNs> loss_times;
  std::vector<CompletionSample> completions;
  int64_t kv_invalidated_tokens = 0;
  bool recovered = false;
};

// Runs the small FlexPipe deployment under `plan` (armed only when `arm` is set, so the
// same helper produces the no-injector control run) and returns the full trace.
StormOutcome RunStorm(FaultRecoveryPolicy policy, bool arm, const FaultPlan& plan) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig fconfig = SmallFlexPipeConfig();
  fconfig.fault_recovery = policy;
  FlexPipeSystem system(env.Context(), &env.ladder(0), fconfig);
  FaultInjector injector(&env.sim(), &env.cluster());
  injector.AddGpuLossListener(
      [&system](const std::vector<GpuId>& lost) { system.OnGpusLost(lost); });
  if (arm) {
    injector.Arm(plan);
  }

  std::vector<RequestSpec> specs = StormWorkload();
  std::vector<Request> storage;
  RunReport report =
      RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  // The post-storm state must audit clean in every build: the free-GPU index excludes
  // the dead GPUs and the router holds no instance that was lost to a fault.
  EXPECT_TRUE(SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system}).empty());

  StormOutcome out;
  out.submitted = report.submitted;
  out.completed = system.metrics().completed();
  out.events = env.sim().executed_events() - report.audit_events;
  out.stats = system.failure_stats();
  out.faults_fired = injector.faults_fired();
  out.gpus_lost = injector.gpus_lost();
  out.loss_times = injector.loss_times();
  out.completions = system.metrics().completions();
  out.kv_invalidated_tokens = system.kv_invalidated_tokens();
  out.recovered = AnalyzeFailureRecovery(out.completions, out.loss_times,
                                         report.ran_until)
                      .recovered;
  return out;
}

FaultPlan ChurnPlan(const ExperimentEnvConfig& config, double fraction) {
  // Built against a throwaway cluster with the same config: topology shape (not
  // occupancy) determines the victim sample, so the plan transfers to the run's
  // cluster exactly.
  Cluster cluster(config.cluster);
  return FaultPlan::FleetChurn(10 * kSecond, 500 * kMillisecond, fraction, cluster, 99);
}

TEST(FaultStormTest, EmptyPlanIsBitIdenticalToNoInjector) {
  StormOutcome without = RunStorm(FaultRecoveryPolicy::kReform, false, FaultPlan{});
  StormOutcome with_empty = RunStorm(FaultRecoveryPolicy::kReform, true, FaultPlan{});

  EXPECT_EQ(with_empty.faults_fired, 0);
  EXPECT_EQ(with_empty.gpus_lost, 0);
  EXPECT_EQ(without.submitted, with_empty.submitted);
  EXPECT_EQ(without.completed, with_empty.completed);
  EXPECT_EQ(without.events, with_empty.events);
  ASSERT_EQ(without.completions.size(), with_empty.completions.size());
  for (size_t i = 0; i < without.completions.size(); ++i) {
    EXPECT_EQ(without.completions[i].done_time, with_empty.completions[i].done_time);
    EXPECT_EQ(without.completions[i].latency, with_empty.completions[i].latency);
  }
  EXPECT_EQ(without.stats.instances_lost, 0);
  EXPECT_EQ(with_empty.stats.instances_lost, 0);
}

TEST(FaultStormTest, StormReplayIsBitIdentical) {
  FaultPlan plan = ChurnPlan(SmallEnvConfig(), 0.4);
  StormOutcome first = RunStorm(FaultRecoveryPolicy::kReform, true, plan);
  StormOutcome second = RunStorm(FaultRecoveryPolicy::kReform, true, plan);

  EXPECT_GT(first.stats.instances_lost, 0);
  EXPECT_EQ(first.submitted, second.submitted);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.faults_fired, second.faults_fired);
  EXPECT_EQ(first.gpus_lost, second.gpus_lost);
  EXPECT_EQ(first.loss_times, second.loss_times);
  EXPECT_EQ(first.stats.instances_lost, second.stats.instances_lost);
  EXPECT_EQ(first.stats.requests_requeued, second.stats.requests_requeued);
  EXPECT_EQ(first.stats.requests_restarted, second.stats.requests_restarted);
  EXPECT_EQ(first.stats.requests_resumed, second.stats.requests_resumed);
  EXPECT_EQ(first.kv_invalidated_tokens, second.kv_invalidated_tokens);
  ASSERT_EQ(first.completions.size(), second.completions.size());
  for (size_t i = 0; i < first.completions.size(); ++i) {
    EXPECT_EQ(first.completions[i].done_time, second.completions[i].done_time);
    EXPECT_EQ(first.completions[i].latency, second.completions[i].latency);
  }
}

TEST(FaultStormTest, MidDecodeLossRequeuesExactlyOnceUnderReform) {
  StormOutcome out =
      RunStorm(FaultRecoveryPolicy::kReform, true, ChurnPlan(SmallEnvConfig(), 0.4));

  ASSERT_GT(out.stats.instances_lost, 0);
  EXPECT_GT(out.stats.requests_requeued, 0);
  // Exactly-once: every submitted request completes exactly once despite displacement —
  // a lost request would leave completed < submitted, a double-requeue would
  // double-complete and overshoot.
  EXPECT_EQ(out.completed, out.submitted);
  // Reform keeps decode progress: nothing restarts from token zero, and every resumed
  // request carries an Eq. 10 all-invalid mask over its regenerated context.
  EXPECT_EQ(out.stats.requests_restarted, 0);
  if (out.stats.requests_resumed > 0) {
    EXPECT_GT(out.kv_invalidated_tokens, 0);
  }
  EXPECT_TRUE(out.recovered);
}

TEST(FaultStormTest, TeardownPolicyRestartsInsteadOfResuming) {
  StormOutcome out =
      RunStorm(FaultRecoveryPolicy::kTeardown, true, ChurnPlan(SmallEnvConfig(), 0.4));

  ASSERT_GT(out.stats.instances_lost, 0);
  EXPECT_GT(out.stats.requests_requeued, 0);
  EXPECT_EQ(out.completed, out.submitted);
  // The PipeBoost-style baseline drops progress wholesale: no KV is ever resumed.
  EXPECT_EQ(out.stats.requests_resumed, 0);
  EXPECT_EQ(out.kv_invalidated_tokens, 0);
}

TEST(FaultStormTest, PartitionHealRestoresRoutability) {
  // Quarantine half the racks mid-run; every partition heals 8 seconds later.
  ExperimentEnvConfig env_config = SmallEnvConfig();
  FaultPlan plan;
  for (RackId rack = 0; rack < 3; ++rack) {
    FaultPlan p = FaultPlan::RackPartition(10 * kSecond + rack * kSecond, rack,
                                           8 * kSecond);
    plan.events.insert(plan.events.end(), p.events.begin(), p.events.end());
  }

  ExperimentEnv env(env_config);
  FlexPipeSystem system(env.Context(), &env.ladder(0), SmallFlexPipeConfig());
  FaultInjector injector(&env.sim(), &env.cluster());
  injector.AddGpuLossListener(
      [&system](const std::vector<GpuId>& lost) { system.OnGpusLost(lost); });
  injector.Arm(plan);

  std::vector<RequestSpec> specs = StormWorkload();
  std::vector<Request> storage;
  RunReport report =
      RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_EQ(injector.faults_fired(), 6);  // 3 partitions + 3 heals
  EXPECT_GT(system.failure_stats().instances_lost, 0);
  // Partitions are temporary: nothing is dead and the whole cluster is routable again.
  EXPECT_EQ(env.cluster().failed_gpu_count(), 0);
  for (RackId rack = 0; rack < env.cluster().rack_count(); ++rack) {
    EXPECT_TRUE(env.cluster().RackReachable(rack));
  }
  for (GpuId g = 0; g < env.cluster().gpu_count(); ++g) {
    EXPECT_TRUE(env.cluster().GpuUsable(g));
  }
  // Routability after the heal: the drained system completed the full workload.
  EXPECT_EQ(system.metrics().completed(), report.submitted);
  EXPECT_TRUE(SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system}).empty());
}

TEST(FaultStormTest, PartitionDuringChurnStormComposesCleanly) {
  // Fault plans are data, so storms compose by concatenation: a rack partitions (and
  // later heals) in the middle of a rolling churn that may kill servers inside the
  // quarantined rack. Exactly-once accounting must survive the overlap.
  FaultPlan plan = ChurnPlan(SmallEnvConfig(), 0.3);
  FaultPlan partition = FaultPlan::RackPartition(11 * kSecond, /*rack=*/0, 6 * kSecond);
  plan.events.insert(plan.events.end(), partition.events.begin(), partition.events.end());

  StormOutcome first = RunStorm(FaultRecoveryPolicy::kReform, true, plan);
  StormOutcome second = RunStorm(FaultRecoveryPolicy::kReform, true, plan);

  ASSERT_GT(first.stats.instances_lost, 0);
  EXPECT_EQ(first.completed, first.submitted);
  EXPECT_EQ(first.stats.requests_restarted, 0);
  // The composed storm replays bit-identically, overlap and all.
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.loss_times, second.loss_times);
  EXPECT_EQ(first.completed, second.completed);
}

TEST(FaultStormTest, UnhealedPartitionAtHorizonStillDrainsEverything) {
  // The heal is scheduled far past the run horizon, so it never fires — the partition
  // is effectively permanent for this run. That must not strand requests: the
  // quarantined capacity was evacuated at fault time, so the drain completes from the
  // surviving racks alone (the documented heal-past-horizon contract).
  FaultPlan plan = FaultPlan::RackPartition(10 * kSecond, /*rack=*/0,
                                            /*heal_after=*/100000 * kSecond);
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeSystem system(env.Context(), &env.ladder(0), SmallFlexPipeConfig());
  FaultInjector injector(&env.sim(), &env.cluster());
  injector.AddGpuLossListener(
      [&system](const std::vector<GpuId>& lost) { system.OnGpusLost(lost); });
  injector.Arm(plan);

  std::vector<RequestSpec> specs = StormWorkload();
  std::vector<Request> storage;
  RunReport report =
      RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_EQ(injector.faults_fired(), 1);  // the heal never fired
  EXPECT_FALSE(env.cluster().RackReachable(0));
  EXPECT_EQ(system.metrics().completed(), report.submitted);
  EXPECT_TRUE(SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system}).empty());
}

TEST(FaultStormTest, BrownoutShedsLowPriorityTrafficUnderTotalCapacityLoss) {
  // Every power domain trips at t=10s and heals 40s later: the fleet floor is
  // unreachable for the whole outage, so brownout admission control must shed the
  // lower priority classes while class 0 queues for the eventual relaunch.
  ExperimentEnvConfig env_config = SmallEnvConfig();
  ExperimentEnv env(env_config);
  FlexPipeConfig fconfig = SmallFlexPipeConfig();
  fconfig.enable_brownout = true;
  FlexPipeSystem system(env.Context(), &env.ladder(0), fconfig);
  FaultInjector injector(&env.sim(), &env.cluster());
  injector.AddGpuLossListener(
      [&system](const std::vector<GpuId>& lost) { system.OnGpusLost(lost); });
  FaultPlan plan;
  for (PowerDomainId d = 0; d < env.cluster().power_domain_count(); ++d) {
    FaultPlan p = FaultPlan::PowerDomainOutage(10 * kSecond, d, env.cluster(),
                                               /*heal_after=*/40 * kSecond);
    plan.events.insert(plan.events.end(), p.events.begin(), p.events.end());
  }
  injector.Arm(plan);

  std::vector<RequestSpec> specs = StormWorkload();
  std::vector<Request> storage;
  RunReport report =
      RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  const ServingSystemBase::FailureStats& stats = system.failure_stats();
  // The outage took whole pipelines (every stage GPU unusable at once).
  EXPECT_GT(stats.instances_lost, 0);
  EXPECT_GT(stats.whole_pipeline_losses, 0);
  // Brownout shed some arrivals but never class 0, and the balance still closes
  // exactly: every submitted request either completed or was shed, nothing stranded.
  EXPECT_GT(stats.requests_shed, 0);
  EXPECT_LT(stats.requests_shed, report.submitted);
  EXPECT_EQ(system.metrics().completed() + stats.requests_shed, report.submitted);
  EXPECT_TRUE(SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system}).empty());
}

// -- Fail-slow (gray) faults --------------------------------------------------------------

TEST(FaultPlanTest, FailSlowBuilderShapes) {
  FaultPlan slow = FaultPlan::GpuSlowdown(5 * kSecond, /*server=*/3, 0.4, 10 * kSecond);
  ASSERT_EQ(slow.events.size(), 2u);
  EXPECT_EQ(slow.events[0].kind, FaultKind::kGpuSlowdown);
  EXPECT_EQ(slow.events[0].target, 3);
  EXPECT_EQ(slow.events[0].magnitude, 0.4);
  EXPECT_EQ(slow.events[1].when, 15 * kSecond);
  EXPECT_EQ(slow.events[1].magnitude, 1.0);  // recovery = the same kind at nominal

  // recover_after <= 0: the degradation never clears.
  EXPECT_EQ(FaultPlan::GpuSlowdown(5 * kSecond, 3, 0.4).events.size(), 1u);
  EXPECT_EQ(FaultPlan::LinkDegrade(5 * kSecond, 3, 0.2).events.size(), 1u);

  FaultPlan link = FaultPlan::LinkDegrade(5 * kSecond, /*server=*/7, 0.2, 3 * kSecond);
  ASSERT_EQ(link.events.size(), 2u);
  EXPECT_EQ(link.events[0].kind, FaultKind::kServerLinkDegrade);
  EXPECT_EQ(link.events[0].magnitude, 0.2);
  EXPECT_EQ(link.events[1].when, 8 * kSecond);

  // The rack variant is ONE event (atomic, like the power-domain outage).
  FaultPlan rack = FaultPlan::RackLinkDegrade(5 * kSecond, /*rack=*/1, 0.5, 3 * kSecond);
  ASSERT_EQ(rack.events.size(), 2u);
  EXPECT_EQ(rack.events[0].kind, FaultKind::kRackLinkDegrade);
  EXPECT_EQ(rack.events[0].target, 1);
}

TEST(FaultPlanTest, ThrottleWaveIsSeededAndRecoversPerInfection) {
  Cluster cluster(EvalClusterConfig());
  const ThermalZoneId seed_zone = cluster.thermal_zone_count() / 2;

  FaultPlan a = FaultPlan::ThrottleWave(5 * kSecond, seed_zone, cluster, 0.4, 0.7,
                                        2 * kSecond, 8 * kSecond, 20 * kSecond, 17);
  FaultPlan b = FaultPlan::ThrottleWave(5 * kSecond, seed_zone, cluster, 0.4, 0.7,
                                        2 * kSecond, 8 * kSecond, 20 * kSecond, 17);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].when, b.events[i].when);
    EXPECT_EQ(a.events[i].kind, FaultKind::kGpuSlowdown);  // nothing ever dies
    EXPECT_EQ(a.events[i].target, b.events[i].target);
    EXPECT_EQ(a.events[i].magnitude, b.events[i].magnitude);
  }

  // Every infected server throttles once and recovers exactly 20s after its own
  // infection time (not the wave start) — rolling recovery, like rolling onset.
  std::map<int32_t, TimeNs> throttled_at;
  for (const FaultEvent& e : a.events) {
    if (e.magnitude != 1.0) {
      EXPECT_EQ(e.magnitude, 0.4);
      EXPECT_EQ(throttled_at.count(e.target), 0u);  // at most one throttle per server
      throttled_at[e.target] = e.when;
    }
  }
  EXPECT_FALSE(throttled_at.empty());
  for (const FaultEvent& e : a.events) {
    if (e.magnitude == 1.0) {
      ASSERT_EQ(throttled_at.count(e.target), 1u);
      EXPECT_EQ(e.when, throttled_at[e.target] + 20 * kSecond);
    }
  }
  // The seed zone throttles at the wave start regardless of the spread draws.
  for (ServerId s : cluster.ThermalZoneServers(seed_zone)) {
    ASSERT_EQ(throttled_at.count(s), 1u);
    EXPECT_EQ(throttled_at[s], 5 * kSecond);
  }
}

TEST(ClusterFaultTest, DegradeFiresNoLossListenerAndRestoresCleanly) {
  Simulation sim;
  Cluster cluster(EvalClusterConfig());
  FaultInjector injector(&sim, &cluster);
  int loss_calls = 0;
  injector.AddGpuLossListener(
      [&loss_calls](const std::vector<GpuId>&) { ++loss_calls; });

  FaultPlan plan = FaultPlan::GpuSlowdown(kSecond, /*server=*/0, 0.4, 2 * kSecond);
  FaultPlan link = FaultPlan::LinkDegrade(kSecond, /*server=*/1, 0.2, 4 * kSecond);
  plan.events.insert(plan.events.end(), link.events.begin(), link.events.end());
  injector.Arm(plan);
  sim.RunUntil(1500 * kMillisecond);

  // Mid-degradation: both servers are slower but every GPU is still usable — the
  // defining property of a gray failure — and no loss listener ever fired.
  EXPECT_EQ(loss_calls, 0);
  EXPECT_EQ(cluster.failed_gpu_count(), 0);
  EXPECT_EQ(cluster.ServerPerf(0), 0.4);
  EXPECT_EQ(cluster.ServerLinkFactor(1), 0.2);
  EXPECT_TRUE(cluster.ServerDegraded(0));
  EXPECT_TRUE(cluster.ServerDegraded(1));
  EXPECT_TRUE(cluster.AnyDegraded());
  EXPECT_EQ(cluster.degraded_server_count(), 2);
  EXPECT_TRUE(SimulationAuditor::AuditPerfState(cluster).empty());

  sim.RunUntilIdle();
  // Both recoveries landed: factors back to exactly 1.0 and the cached degraded
  // count back to zero, so the one-branch AnyDegraded guard is false again.
  EXPECT_EQ(loss_calls, 0);
  EXPECT_EQ(cluster.ServerPerf(0), 1.0);
  EXPECT_EQ(cluster.ServerLinkFactor(1), 1.0);
  EXPECT_FALSE(cluster.AnyDegraded());
  EXPECT_EQ(injector.degrade_times().size(), 2u);  // restores are not degrade events
  EXPECT_TRUE(SimulationAuditor::AuditPerfState(cluster).empty());
}

TEST(ClusterFaultTest, SlowdownComposesWithFailStopFaults) {
  // Slowdown-while-down: a server throttles, then its rack partitions, heals, and the
  // throttle clears last. Fail-slow state must ride through the fail-stop transitions
  // without leaking into either the failure accounting or the perf-state audit.
  Simulation sim;
  Cluster cluster(EvalClusterConfig());
  const RackId rack = 0;
  ServerId victim = kInvalidServer;
  for (ServerId s : cluster.rack(rack).servers) {
    if (!cluster.server(s).gpus.empty()) {
      victim = s;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidServer);

  FaultPlan plan = FaultPlan::GpuSlowdown(kSecond, victim, 0.5, 8 * kSecond);
  FaultPlan part = FaultPlan::RackPartition(2 * kSecond, rack, 3 * kSecond);
  plan.events.insert(plan.events.end(), part.events.begin(), part.events.end());
  // Heal-then-throttle on a second server: degradation arriving after a heal.
  FaultPlan late = FaultPlan::GpuSlowdown(6 * kSecond, victim + 1, 0.5, 10 * kSecond);
  plan.events.insert(plan.events.end(), late.events.begin(), late.events.end());

  FaultInjector injector(&sim, &cluster);
  injector.Arm(plan);
  sim.RunUntil(5500 * kMillisecond);

  // Post-heal, pre-clear: the partition lifted but the throttle is still live.
  EXPECT_TRUE(cluster.RackReachable(rack));
  EXPECT_TRUE(cluster.ServerDegraded(victim));
  for (GpuId g : cluster.server(victim).gpus) {
    EXPECT_TRUE(cluster.GpuUsable(g));
  }
  EXPECT_TRUE(SimulationAuditor::AuditPerfState(cluster).empty());

  sim.RunUntilIdle();
  EXPECT_FALSE(cluster.AnyDegraded());
  EXPECT_EQ(cluster.failed_gpu_count(), 0);
  // Two degradation episodes never overlapped... unless they did: victim cleared at
  // 9s, victim+1 degraded at 6s — overlapping, so ONE episode spans 1s..16s.
  ASSERT_EQ(injector.degradation_episodes().size(), 1u);
  EXPECT_EQ(injector.degradation_episodes()[0].start, kSecond);
  EXPECT_EQ(injector.degradation_episodes()[0].clear, 16 * kSecond);
  EXPECT_TRUE(SimulationAuditor::AuditPerfState(cluster).empty());
}

TEST(ClusterFaultTest, DegradationEpisodesSplitWhenCountReturnsToZero) {
  Simulation sim;
  Cluster cluster(EvalClusterConfig());
  FaultInjector injector(&sim, &cluster);
  FaultPlan plan = FaultPlan::GpuSlowdown(kSecond, 0, 0.4, kSecond);
  FaultPlan second = FaultPlan::LinkDegrade(5 * kSecond, 1, 0.2);  // never clears
  plan.events.insert(plan.events.end(), second.events.begin(), second.events.end());
  injector.Arm(plan);
  sim.RunUntilIdle();

  ASSERT_EQ(injector.degradation_episodes().size(), 2u);
  EXPECT_EQ(injector.degradation_episodes()[0].start, kSecond);
  EXPECT_EQ(injector.degradation_episodes()[0].clear, 2 * kSecond);
  EXPECT_EQ(injector.degradation_episodes()[1].start, 5 * kSecond);
  EXPECT_EQ(injector.degradation_episodes()[1].clear, 0);  // open at end of run
  EXPECT_TRUE(cluster.AnyDegraded());
}

TEST(FaultStormTest, ThrottleWaveStormDrainsAndReplaysBitIdentically) {
  // End-to-end: a rolling throttle wave with health monitoring + mitigation enabled.
  // Requests displaced by proactive evacuations must still complete exactly once, and
  // the whole run must replay bit-identically at the same seed.
  ExperimentEnvConfig env_config = SmallEnvConfig();
  FaultPlan wave;
  {
    Cluster shape(env_config.cluster);
    wave = FaultPlan::ThrottleWave(10 * kSecond, shape.thermal_zone_count() / 2, shape,
                                   /*multiplier=*/0.12, /*spread_factor=*/1.0,
                                   /*spread_interval=*/2 * kSecond,
                                   /*quench_after=*/4 * kSecond,
                                   /*recover_after=*/60 * kSecond, /*seed=*/17);
  }
  ASSERT_FALSE(wave.empty());

  auto run = [&]() {
    ExperimentEnv env(env_config);
    FlexPipeConfig fconfig = SmallFlexPipeConfig();
    fconfig.fault_recovery = FaultRecoveryPolicy::kReform;
    fconfig.health.enabled = true;
    fconfig.health.hysteresis_windows = 2;
    fconfig.health.reprobe_interval = 5 * kSecond;
    FlexPipeSystem system(env.Context(), &env.ladder(0), fconfig);
    FaultInjector injector(&env.sim(), &env.cluster());
    injector.AddGpuLossListener(
        [&system](const std::vector<GpuId>& lost) { system.OnGpusLost(lost); });
    injector.Arm(wave);

    std::vector<RequestSpec> specs = StormWorkload();
    std::vector<Request> storage;
    RunReport report = RunWorkload(env, system, specs, storage,
                                   RunOptions{.drain_grace = 180 * kSecond});
    EXPECT_TRUE(SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system}).empty());

    StormOutcome out;
    out.submitted = report.submitted;
    out.completed = system.metrics().completed();
    out.events = env.sim().executed_events() - report.audit_events;
    out.stats = system.failure_stats();
    out.completions = system.metrics().completions();
    EXPECT_GT(system.health_monitor()->flags_raised(), 0);
    EXPECT_EQ(out.submitted, out.completed);  // gray faults lose nothing
    return out;
  };

  StormOutcome first = run();
  StormOutcome second = run();
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.stats.requests_requeued, second.stats.requests_requeued);
  ASSERT_EQ(first.completions.size(), second.completions.size());
  for (size_t i = 0; i < first.completions.size(); ++i) {
    EXPECT_EQ(first.completions[i].done_time, second.completions[i].done_time);
    EXPECT_EQ(first.completions[i].latency, second.completions[i].latency);
  }
}

TEST(FaultStormTest, BrownoutOffShedsNothing) {
  // Same storm, brownout disabled (the default): no request is ever refused, so the
  // whole workload completes after the heal — the opt-in flag gates all shedding.
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeSystem system(env.Context(), &env.ladder(0), SmallFlexPipeConfig());
  FaultInjector injector(&env.sim(), &env.cluster());
  injector.AddGpuLossListener(
      [&system](const std::vector<GpuId>& lost) { system.OnGpusLost(lost); });
  FaultPlan plan;
  for (PowerDomainId d = 0; d < env.cluster().power_domain_count(); ++d) {
    FaultPlan p = FaultPlan::PowerDomainOutage(10 * kSecond, d, env.cluster(),
                                               /*heal_after=*/40 * kSecond);
    plan.events.insert(plan.events.end(), p.events.begin(), p.events.end());
  }
  injector.Arm(plan);

  std::vector<RequestSpec> specs = StormWorkload();
  std::vector<Request> storage;
  RunReport report =
      RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_EQ(system.failure_stats().requests_shed, 0);
  EXPECT_EQ(system.metrics().completed(), report.submitted);
}

}  // namespace
}  // namespace flexpipe
