// Fault-injection and recovery tests: the cluster-level fault primitives, the seeded
// storm builders, the goodput-dip recovery metric, and the end-to-end contracts the
// fig15 bench relies on — bit-identical storm replay at a fixed seed, exactly-once
// requeue of displaced requests (submitted == completed after the drain), partition
// heals restoring routability, and an armed-but-empty fault plan perturbing nothing
// (the mechanism behind the untouched fig9/fig13 golden signatures).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/cluster/topology.h"
#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"
#include "src/metrics/recovery.h"
#include "src/sim/auditor.h"
#include "src/sim/faults.h"
#include "src/sim/simulation.h"

namespace flexpipe {
namespace {

// -- Fault plan builders ------------------------------------------------------------------

TEST(FaultPlanTest, SingleServerAndRackPartitionShapes) {
  FaultPlan server = FaultPlan::SingleServer(5 * kSecond, /*server=*/3);
  ASSERT_EQ(server.events.size(), 1u);
  EXPECT_EQ(server.events[0].when, 5 * kSecond);
  EXPECT_EQ(server.events[0].kind, FaultKind::kServerFailure);
  EXPECT_EQ(server.events[0].target, 3);

  FaultPlan healing = FaultPlan::RackPartition(10 * kSecond, /*rack=*/1, 4 * kSecond);
  ASSERT_EQ(healing.events.size(), 2u);
  EXPECT_EQ(healing.events[0].kind, FaultKind::kRackPartition);
  EXPECT_EQ(healing.events[1].kind, FaultKind::kRackHeal);
  EXPECT_EQ(healing.events[1].when, 14 * kSecond);

  FaultPlan permanent = FaultPlan::RackPartition(10 * kSecond, /*rack=*/1, 0);
  EXPECT_EQ(permanent.events.size(), 1u);
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlanTest, FleetChurnIsSeededAndSpaced) {
  Cluster cluster(EvalClusterConfig());
  int gpu_servers = 0;
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    if (!cluster.server(s).gpus.empty()) {
      ++gpu_servers;
    }
  }

  FaultPlan a = FaultPlan::FleetChurn(10 * kSecond, kSecond, 0.10, cluster, 99);
  FaultPlan b = FaultPlan::FleetChurn(10 * kSecond, kSecond, 0.10, cluster, 99);
  ASSERT_EQ(a.events.size(), static_cast<size_t>(gpu_servers / 10));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].when, 10 * kSecond + static_cast<TimeNs>(i) * kSecond);
    EXPECT_EQ(a.events[i].kind, FaultKind::kServerFailure);
    EXPECT_EQ(a.events[i].target, b.events[i].target);  // same seed, same victims
  }
  // Victims are drawn without replacement.
  std::vector<int32_t> targets;
  for (const FaultEvent& e : a.events) {
    targets.push_back(e.target);
  }
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(std::adjacent_find(targets.begin(), targets.end()), targets.end());

  // A different seed reshuffles the victim sample.
  FaultPlan c = FaultPlan::FleetChurn(10 * kSecond, kSecond, 0.10, cluster, 100);
  bool any_differs = false;
  for (size_t i = 0; i < c.events.size(); ++i) {
    any_differs = any_differs || c.events[i].target != a.events[i].target;
  }
  EXPECT_TRUE(any_differs);
}

// -- Cluster fault primitives -------------------------------------------------------------

TEST(ClusterFaultTest, FailedGpuLeavesIndexButKeepsAccounting) {
  Cluster cluster(EvalClusterConfig());
  const GpuId victim = 0;
  cluster.gpu(victim).Reserve(GiB(10), 0.3);
  ASSERT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());

  cluster.SetGpuFailed(victim);
  EXPECT_TRUE(cluster.GpuFailed(victim));
  EXPECT_FALSE(cluster.GpuUsable(victim));
  EXPECT_EQ(cluster.failed_gpu_count(), 1);

  std::vector<GpuId> free = cluster.GpusWithFreeMemory(GiB(1));
  EXPECT_EQ(std::find(free.begin(), free.end(), victim), free.end());
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());

  // The owning system still releases what it reserved: Reserve/Release stays balanced
  // through the failure and the index (which already excludes the GPU) stays clean.
  cluster.gpu(victim).Release(GiB(10), 0.3);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(ClusterFaultTest, ServerFailureKillsEveryGpu) {
  Cluster cluster(EvalClusterConfig());
  ServerId victim = -1;
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    if (cluster.server(s).gpus.size() > 1) {
      victim = s;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  cluster.SetServerFailed(victim);
  for (GpuId g : cluster.server(victim).gpus) {
    EXPECT_TRUE(cluster.GpuFailed(g));
    EXPECT_FALSE(cluster.GpuUsable(g));
  }
  EXPECT_EQ(cluster.failed_gpu_count(),
            static_cast<int>(cluster.server(victim).gpus.size()));
  EXPECT_EQ(cluster.server_max_free(victim), 0);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(ClusterFaultTest, RackPartitionQuarantinesAndHealRestores) {
  Cluster cluster(EvalClusterConfig());
  const RackId rack = 0;
  std::vector<GpuId> rack_gpus;
  for (ServerId s : cluster.rack(rack).servers) {
    for (GpuId g : cluster.server(s).gpus) {
      rack_gpus.push_back(g);
    }
  }
  ASSERT_FALSE(rack_gpus.empty());
  const size_t usable_before = cluster.GpusWithFreeMemory(GiB(1)).size();

  cluster.SetRackReachable(rack, false);
  EXPECT_FALSE(cluster.RackReachable(rack));
  EXPECT_EQ(cluster.failed_gpu_count(), 0);  // partitioned, not dead
  for (GpuId g : rack_gpus) {
    EXPECT_FALSE(cluster.GpuUsable(g));
    EXPECT_FALSE(cluster.GpuFailed(g));
  }
  EXPECT_EQ(cluster.GpusWithFreeMemory(GiB(1)).size(), usable_before - rack_gpus.size());
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());

  cluster.SetRackReachable(rack, true);
  for (GpuId g : rack_gpus) {
    EXPECT_TRUE(cluster.GpuUsable(g));
  }
  EXPECT_EQ(cluster.GpusWithFreeMemory(GiB(1)).size(), usable_before);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

// -- Goodput-dip recovery metric ----------------------------------------------------------

TEST(FailureRecoveryMetricTest, MeasuresDipDepthAreaAndRecoveryTime) {
  // Steady 10 rps, a 5-second outage at t=20s, then full rate again.
  std::vector<CompletionSample> completions;
  for (TimeNs t = 0; t < 60 * kSecond; t += 100 * kMillisecond) {
    if (t >= 20 * kSecond && t < 25 * kSecond) {
      continue;
    }
    completions.push_back({t, 50 * kMillisecond});
  }
  FailureRecoveryReport report = AnalyzeFailureRecovery(
      completions, {20 * kSecond}, /*horizon=*/60 * kSecond);
  EXPECT_EQ(report.fault_count, 1);
  EXPECT_TRUE(report.recovered);
  EXPECT_NEAR(report.pre_fault_goodput_rps, 10.0, 0.5);
  EXPECT_NEAR(report.time_to_recover_s, 5.0, 1.5);
  EXPECT_NEAR(report.dip_depth_rps, 10.0, 0.5);
  EXPECT_NEAR(report.dip_area_rps_s, 50.0, 10.0);
}

TEST(FailureRecoveryMetricTest, NeverRecoveringOutageIsReported) {
  std::vector<CompletionSample> completions;
  for (TimeNs t = 0; t < 20 * kSecond; t += 100 * kMillisecond) {
    completions.push_back({t, 50 * kMillisecond});
  }
  FailureRecoveryReport report = AnalyzeFailureRecovery(
      completions, {20 * kSecond}, /*horizon=*/60 * kSecond);
  EXPECT_EQ(report.fault_count, 1);
  EXPECT_FALSE(report.recovered);
  // The open episode charges its span to the horizon: strictly worse than any arm
  // that actually recovered within the series.
  EXPECT_NEAR(report.time_to_recover_s, 40.0, 1.5);
}

TEST(FailureRecoveryMetricTest, NoFaultsIsTriviallyRecovered) {
  FailureRecoveryReport report = AnalyzeFailureRecovery({}, {}, 60 * kSecond);
  EXPECT_EQ(report.fault_count, 0);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.dip_area_rps_s, 0.0);
}

// -- End-to-end storms --------------------------------------------------------------------

ExperimentEnvConfig SmallEnvConfig() {
  ExperimentEnvConfig config;
  config.models = {Llama2_7B()};
  config.partitioner.ladder = {2, 4, 8, 16};
  config.seed = 7;
  return config;
}

FlexPipeConfig SmallFlexPipeConfig() {
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  return config;
}

// Longer decodes than the audit-test workload so a mid-run fault reliably lands while
// requests are mid-decode (the interesting recovery case).
std::vector<RequestSpec> StormWorkload() {
  WorkloadGenerator::Config wconfig;
  wconfig.lengths.prompt_median = 256;
  wconfig.lengths.output_median = 64;
  WorkloadGenerator gen(wconfig);
  Rng rng(3);
  return gen.GenerateWithCv(rng, /*rate=*/4.0, /*cv=*/4.0, 30 * kSecond);
}

struct StormOutcome {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t events = 0;  // engine events net of the debug-build auditor's own
  ServingSystemBase::FailureStats stats;
  int faults_fired = 0;
  int gpus_lost = 0;
  std::vector<TimeNs> loss_times;
  std::vector<CompletionSample> completions;
  int64_t kv_invalidated_tokens = 0;
  bool recovered = false;
};

// Runs the small FlexPipe deployment under `plan` (armed only when `arm` is set, so the
// same helper produces the no-injector control run) and returns the full trace.
StormOutcome RunStorm(FaultRecoveryPolicy policy, bool arm, const FaultPlan& plan) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig fconfig = SmallFlexPipeConfig();
  fconfig.fault_recovery = policy;
  FlexPipeSystem system(env.Context(), &env.ladder(0), fconfig);
  FaultInjector injector(&env.sim(), &env.cluster());
  injector.AddGpuLossListener(
      [&system](const std::vector<GpuId>& lost) { system.OnGpusLost(lost); });
  if (arm) {
    injector.Arm(plan);
  }

  std::vector<RequestSpec> specs = StormWorkload();
  std::vector<Request> storage;
  RunReport report =
      RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  // The post-storm state must audit clean in every build: the free-GPU index excludes
  // the dead GPUs and the router holds no instance that was lost to a fault.
  EXPECT_TRUE(SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system}).empty());

  StormOutcome out;
  out.submitted = report.submitted;
  out.completed = system.metrics().completed();
  out.events = env.sim().executed_events() - report.audit_events;
  out.stats = system.failure_stats();
  out.faults_fired = injector.faults_fired();
  out.gpus_lost = injector.gpus_lost();
  out.loss_times = injector.loss_times();
  out.completions = system.metrics().completions();
  out.kv_invalidated_tokens = system.kv_invalidated_tokens();
  out.recovered = AnalyzeFailureRecovery(out.completions, out.loss_times,
                                         report.ran_until)
                      .recovered;
  return out;
}

FaultPlan ChurnPlan(const ExperimentEnvConfig& config, double fraction) {
  // Built against a throwaway cluster with the same config: topology shape (not
  // occupancy) determines the victim sample, so the plan transfers to the run's
  // cluster exactly.
  Cluster cluster(config.cluster);
  return FaultPlan::FleetChurn(10 * kSecond, 500 * kMillisecond, fraction, cluster, 99);
}

TEST(FaultStormTest, EmptyPlanIsBitIdenticalToNoInjector) {
  StormOutcome without = RunStorm(FaultRecoveryPolicy::kReform, false, FaultPlan{});
  StormOutcome with_empty = RunStorm(FaultRecoveryPolicy::kReform, true, FaultPlan{});

  EXPECT_EQ(with_empty.faults_fired, 0);
  EXPECT_EQ(with_empty.gpus_lost, 0);
  EXPECT_EQ(without.submitted, with_empty.submitted);
  EXPECT_EQ(without.completed, with_empty.completed);
  EXPECT_EQ(without.events, with_empty.events);
  ASSERT_EQ(without.completions.size(), with_empty.completions.size());
  for (size_t i = 0; i < without.completions.size(); ++i) {
    EXPECT_EQ(without.completions[i].done_time, with_empty.completions[i].done_time);
    EXPECT_EQ(without.completions[i].latency, with_empty.completions[i].latency);
  }
  EXPECT_EQ(without.stats.instances_lost, 0);
  EXPECT_EQ(with_empty.stats.instances_lost, 0);
}

TEST(FaultStormTest, StormReplayIsBitIdentical) {
  FaultPlan plan = ChurnPlan(SmallEnvConfig(), 0.4);
  StormOutcome first = RunStorm(FaultRecoveryPolicy::kReform, true, plan);
  StormOutcome second = RunStorm(FaultRecoveryPolicy::kReform, true, plan);

  EXPECT_GT(first.stats.instances_lost, 0);
  EXPECT_EQ(first.submitted, second.submitted);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.faults_fired, second.faults_fired);
  EXPECT_EQ(first.gpus_lost, second.gpus_lost);
  EXPECT_EQ(first.loss_times, second.loss_times);
  EXPECT_EQ(first.stats.instances_lost, second.stats.instances_lost);
  EXPECT_EQ(first.stats.requests_requeued, second.stats.requests_requeued);
  EXPECT_EQ(first.stats.requests_restarted, second.stats.requests_restarted);
  EXPECT_EQ(first.stats.requests_resumed, second.stats.requests_resumed);
  EXPECT_EQ(first.kv_invalidated_tokens, second.kv_invalidated_tokens);
  ASSERT_EQ(first.completions.size(), second.completions.size());
  for (size_t i = 0; i < first.completions.size(); ++i) {
    EXPECT_EQ(first.completions[i].done_time, second.completions[i].done_time);
    EXPECT_EQ(first.completions[i].latency, second.completions[i].latency);
  }
}

TEST(FaultStormTest, MidDecodeLossRequeuesExactlyOnceUnderReform) {
  StormOutcome out =
      RunStorm(FaultRecoveryPolicy::kReform, true, ChurnPlan(SmallEnvConfig(), 0.4));

  ASSERT_GT(out.stats.instances_lost, 0);
  EXPECT_GT(out.stats.requests_requeued, 0);
  // Exactly-once: every submitted request completes exactly once despite displacement —
  // a lost request would leave completed < submitted, a double-requeue would
  // double-complete and overshoot.
  EXPECT_EQ(out.completed, out.submitted);
  // Reform keeps decode progress: nothing restarts from token zero, and every resumed
  // request carries an Eq. 10 all-invalid mask over its regenerated context.
  EXPECT_EQ(out.stats.requests_restarted, 0);
  if (out.stats.requests_resumed > 0) {
    EXPECT_GT(out.kv_invalidated_tokens, 0);
  }
  EXPECT_TRUE(out.recovered);
}

TEST(FaultStormTest, TeardownPolicyRestartsInsteadOfResuming) {
  StormOutcome out =
      RunStorm(FaultRecoveryPolicy::kTeardown, true, ChurnPlan(SmallEnvConfig(), 0.4));

  ASSERT_GT(out.stats.instances_lost, 0);
  EXPECT_GT(out.stats.requests_requeued, 0);
  EXPECT_EQ(out.completed, out.submitted);
  // The PipeBoost-style baseline drops progress wholesale: no KV is ever resumed.
  EXPECT_EQ(out.stats.requests_resumed, 0);
  EXPECT_EQ(out.kv_invalidated_tokens, 0);
}

TEST(FaultStormTest, PartitionHealRestoresRoutability) {
  // Quarantine half the racks mid-run; every partition heals 8 seconds later.
  ExperimentEnvConfig env_config = SmallEnvConfig();
  FaultPlan plan;
  for (RackId rack = 0; rack < 3; ++rack) {
    FaultPlan p = FaultPlan::RackPartition(10 * kSecond + rack * kSecond, rack,
                                           8 * kSecond);
    plan.events.insert(plan.events.end(), p.events.begin(), p.events.end());
  }

  ExperimentEnv env(env_config);
  FlexPipeSystem system(env.Context(), &env.ladder(0), SmallFlexPipeConfig());
  FaultInjector injector(&env.sim(), &env.cluster());
  injector.AddGpuLossListener(
      [&system](const std::vector<GpuId>& lost) { system.OnGpusLost(lost); });
  injector.Arm(plan);

  std::vector<RequestSpec> specs = StormWorkload();
  std::vector<Request> storage;
  RunReport report =
      RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_EQ(injector.faults_fired(), 6);  // 3 partitions + 3 heals
  EXPECT_GT(system.failure_stats().instances_lost, 0);
  // Partitions are temporary: nothing is dead and the whole cluster is routable again.
  EXPECT_EQ(env.cluster().failed_gpu_count(), 0);
  for (RackId rack = 0; rack < env.cluster().rack_count(); ++rack) {
    EXPECT_TRUE(env.cluster().RackReachable(rack));
  }
  for (GpuId g = 0; g < env.cluster().gpu_count(); ++g) {
    EXPECT_TRUE(env.cluster().GpuUsable(g));
  }
  // Routability after the heal: the drained system completed the full workload.
  EXPECT_EQ(system.metrics().completed(), report.submitted);
  EXPECT_TRUE(SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system}).empty());
}

}  // namespace
}  // namespace flexpipe
