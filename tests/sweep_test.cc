// Parallel sweep driver tests: the bit-identity contract (per-arm results equal the
// serial reference at any worker count), deterministic completion-order-independent
// merging, exactly-once arm execution, and worker-count env parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/sweep.h"
#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"

namespace flexpipe {
namespace bench {
namespace {

ExperimentEnvConfig SmallEnvConfig() {
  ExperimentEnvConfig config;
  config.models = {Llama2_7B()};
  config.partitioner.ladder = {2, 4, 8, 16};
  config.seed = 7;
  return config;
}

// One self-contained serving cell, shaped like a real bench arm: private env, system
// and stream, returning scalar metrics plus the full completion-time series so the
// comparison below is sensitive to any divergence in simulated behavior.
ArmResult ServingCell(double rate, double cv, uint64_t seed) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  WorkloadGenerator::Config wconfig;
  wconfig.lengths.prompt_median = 256;
  wconfig.lengths.output_median = 16;
  StreamingWorkloadSource stream =
      StreamingWorkloadSource::WithCv(wconfig, rate, cv, 30 * kSecond, Rng(seed));
  StreamingRunReport report = RunStreamingWorkload(
      env, system, stream, RunOptions{.drain_grace = 120 * kSecond});

  ArmResult result;
  result.metrics = {
      {"submitted", static_cast<double>(report.submitted)},
      {"completed", static_cast<double>(system.metrics().completed())},
      {"executed_events", static_cast<double>(env.sim().executed_events())},
      {"mean_latency_s", system.metrics().MeanLatencySec()},
  };
  for (const CompletionSample& sample : system.metrics().completions()) {
    result.series.push_back(static_cast<double>(sample.done_time));
    result.series.push_back(static_cast<double>(sample.latency));
  }
  result.rows.push_back({"completed", std::to_string(system.metrics().completed())});
  return result;
}

std::vector<SweepArm> ServingArms() {
  // Distinct (rate, cv, seed) per arm so a cross-arm mixup cannot cancel out.
  std::vector<SweepArm> arms;
  arms.push_back({"low-cv", [] { return ServingCell(4.0, 1.0, 3); }});
  arms.push_back({"bursty", [] { return ServingCell(6.0, 4.0, 11); }});
  arms.push_back({"high-rate", [] { return ServingCell(8.0, 2.0, 23); }});
  return arms;
}

void ExpectBitIdentical(const ArmResult& a, const ArmResult& b, size_t arm) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size()) << "arm " << arm;
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].first, b.metrics[i].first) << "arm " << arm;
    // Bit-identical, no tolerance: the arms are deterministic universes.
    EXPECT_EQ(a.metrics[i].second, b.metrics[i].second)
        << "arm " << arm << " metric " << a.metrics[i].first;
  }
  ASSERT_EQ(a.series.size(), b.series.size()) << "arm " << arm;
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i], b.series[i]) << "arm " << arm << " sample " << i;
  }
  EXPECT_EQ(a.rows, b.rows) << "arm " << arm;
  EXPECT_EQ(a.exit_code, b.exit_code) << "arm " << arm;
}

TEST(ParallelSweep, ParallelMatchesSerialBitIdentically) {
  const std::vector<ArmResult> serial = ParallelSweepRunner(1).Run(ServingArms());

  std::vector<int> worker_counts = {2, 4,
                                    static_cast<int>(std::thread::hardware_concurrency())};
  for (int workers : worker_counts) {
    if (workers < 1) {
      continue;  // hardware_concurrency may report 0
    }
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const std::vector<ArmResult> parallel = ParallelSweepRunner(workers).Run(ServingArms());
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t arm = 0; arm < serial.size(); ++arm) {
      ExpectBitIdentical(serial[arm], parallel[arm], arm);
    }
  }
}

TEST(ParallelSweep, AllArmsRunExactlyOnce) {
  constexpr size_t kArms = 17;  // more arms than workers: the cursor must hand out all
  // One slot per arm, each written only by whichever worker claims that arm — the
  // slots are disjoint, so concurrent writers never touch the same element.
  std::vector<int> run_counts(kArms, 0);
  std::vector<SweepArm> arms;
  for (size_t i = 0; i < kArms; ++i) {
    arms.push_back({"arm" + std::to_string(i), [&run_counts, i] {
                      ++run_counts[i];
                      ArmResult result;
                      result.metrics = {{"index", static_cast<double>(i)}};
                      return result;
                    }});
  }
  std::vector<ArmResult> results = ParallelSweepRunner(4).Run(arms);
  ASSERT_EQ(results.size(), kArms);
  for (size_t i = 0; i < kArms; ++i) {
    EXPECT_EQ(run_counts[i], 1) << "arm " << i;
    // Each result sits in the slot of the arm that produced it, not completion order.
    ASSERT_EQ(results[i].metrics.size(), 1u);
    EXPECT_EQ(results[i].metrics[0].second, static_cast<double>(i));
  }
}

TEST(ParallelSweep, EmptyAndSingleArmEdgeCases) {
  EXPECT_TRUE(ParallelSweepRunner(4).Run({}).empty());

  std::vector<SweepArm> one;
  one.push_back({"only", [] {
                   ArmResult result;
                   result.metrics = {{"value", 42.0}};
                   return result;
                 }});
  std::vector<ArmResult> results = ParallelSweepRunner(8).Run(one);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].metrics[0].second, 42.0);
}

TEST(MergeByArmIndex, IsCompletionOrderInvariant) {
  constexpr size_t kArms = 6;
  auto make_result = [](size_t index) {
    ArmResult result;
    result.metrics = {{"index", static_cast<double>(index)}};
    result.series = {static_cast<double>(index) * 10.0};
    result.exit_code = static_cast<int>(index % 2);
    return result;
  };
  auto completions_in = [&](const std::vector<size_t>& order) {
    std::vector<std::pair<size_t, ArmResult>> completed;
    for (size_t index : order) {
      completed.emplace_back(index, make_result(index));
    }
    return completed;
  };

  // Identity, reversed, rotated and adversarially interleaved completion orders must
  // all scatter into the same arm-indexed output.
  const std::vector<std::vector<size_t>> orders = {
      {0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}, {3, 4, 5, 0, 1, 2}, {1, 5, 0, 4, 2, 3}};
  for (const std::vector<size_t>& order : orders) {
    std::vector<ArmResult> merged = MergeByArmIndex(completions_in(order), kArms);
    ASSERT_EQ(merged.size(), kArms);
    for (size_t i = 0; i < kArms; ++i) {
      ASSERT_EQ(merged[i].metrics.size(), 1u);
      EXPECT_EQ(merged[i].metrics[0].second, static_cast<double>(i));
      ASSERT_EQ(merged[i].series.size(), 1u);
      EXPECT_EQ(merged[i].series[0], static_cast<double>(i) * 10.0);
      EXPECT_EQ(merged[i].exit_code, static_cast<int>(i % 2));
    }
  }
}

TEST(MergeByArmIndex, RejectsMalformedCompletionSets) {
  ArmResult blank;
  // Unknown arm index.
  EXPECT_DEATH(MergeByArmIndex({{2, blank}}, 2), "unknown arm index");
  // Duplicate completion for one arm.
  EXPECT_DEATH(MergeByArmIndex({{0, blank}, {0, blank}}, 2), "duplicate completion");
  // Missing completion.
  EXPECT_DEATH(MergeByArmIndex({{0, blank}}, 2), "missing completion");
}

TEST(SweepWorkers, EnvParsing) {
  const char* saved = std::getenv("FLEXPIPE_SWEEP_WORKERS");
  std::string saved_value = saved != nullptr ? saved : "";

  unsetenv("FLEXPIPE_SWEEP_WORKERS");
  EXPECT_EQ(SweepWorkersFromEnv(), 1) << "unset defaults to the serial reference path";
  setenv("FLEXPIPE_SWEEP_WORKERS", "", 1);
  EXPECT_EQ(SweepWorkersFromEnv(), 1);
  setenv("FLEXPIPE_SWEEP_WORKERS", "3", 1);
  EXPECT_EQ(SweepWorkersFromEnv(), 3);
  setenv("FLEXPIPE_SWEEP_WORKERS", "garbage", 1);
  EXPECT_EQ(SweepWorkersFromEnv(), 1);
  setenv("FLEXPIPE_SWEEP_WORKERS", "-2", 1);
  EXPECT_EQ(SweepWorkersFromEnv(), 1);
  setenv("FLEXPIPE_SWEEP_WORKERS", "0", 1);
  EXPECT_GE(SweepWorkersFromEnv(), 1) << "0 maps to hardware_concurrency, clamped >= 1";
  setenv("FLEXPIPE_SWEEP_WORKERS", "auto", 1);
  EXPECT_GE(SweepWorkersFromEnv(), 1);

  if (saved != nullptr) {
    setenv("FLEXPIPE_SWEEP_WORKERS", saved_value.c_str(), 1);
  } else {
    unsetenv("FLEXPIPE_SWEEP_WORKERS");
  }
}

}  // namespace
}  // namespace bench
}  // namespace flexpipe
