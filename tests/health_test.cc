// HealthMonitor unit tests: straggler detection hysteresis, quarantine with the
// capacity guard, canary readmission, and the deterministic zero-false-positive
// contract on a healthy fleet (observed == base -> ratio exactly 1.0 -> never flags).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/cluster/topology.h"
#include "src/core/experiment.h"
#include "src/core/health.h"

namespace flexpipe {
namespace {

HealthConfig TestConfig() {
  HealthConfig config;
  config.enabled = true;
  config.ewma_alpha = 0.5;
  config.straggler_ratio = 1.25;
  config.hysteresis_windows = 3;
  config.quarantine_strikes = 1;
  config.reprobe_interval = 10 * kSecond;
  config.readmit_probes = 2;
  return config;
}

// Feeds `server` one window with the given observed/base ratio and closes it.
std::vector<ServerId> FeedWindow(HealthMonitor& monitor, ServerId server, double ratio,
                                 TimeNs now) {
  monitor.Observe(server, static_cast<TimeNs>(ratio * 1e6), static_cast<TimeNs>(1e6));
  return monitor.EndWindow(now);
}

TEST(HealthMonitorTest, HealthyFleetNeverFlags) {
  Cluster cluster(EvalClusterConfig());
  HealthMonitor monitor(&cluster, TestConfig());
  // A healthy runtime reports observed == base EXACTLY (degradation stretches are
  // only applied when a server is degraded), so the ratio is exactly 1.0 and zero
  // false positives is a deterministic guarantee, not a statistical one.
  for (int w = 0; w < 200; ++w) {
    for (ServerId s = 0; s < cluster.server_count(); ++s) {
      monitor.Observe(s, 5 * kMillisecond, 5 * kMillisecond);
    }
    EXPECT_TRUE(monitor.EndWindow(w * kSecond).empty());
  }
  EXPECT_EQ(monitor.flags_raised(), 0);
  EXPECT_EQ(monitor.quarantine_count(), 0);
  for (uint8_t bit : monitor.exclusion_mask()) {
    EXPECT_EQ(bit, 0);
  }
}

TEST(HealthMonitorTest, HysteresisKillsSingleWindowFlaps) {
  Cluster cluster(EvalClusterConfig());
  HealthConfig config = TestConfig();
  config.ewma_alpha = 1.0;  // no smoothing: isolate the streak logic from the EWMA
  HealthMonitor monitor(&cluster, config);
  const ServerId s = 0;
  // Two bad windows (below hysteresis_windows = 3), then a clean one: no flag, and
  // the streak resets so the next bad window starts the count from scratch.
  EXPECT_TRUE(FeedWindow(monitor, s, 3.0, 1 * kSecond).empty());
  EXPECT_TRUE(FeedWindow(monitor, s, 3.0, 2 * kSecond).empty());
  EXPECT_TRUE(FeedWindow(monitor, s, 1.0, 3 * kSecond).empty());
  EXPECT_TRUE(FeedWindow(monitor, s, 3.0, 4 * kSecond).empty());
  EXPECT_TRUE(FeedWindow(monitor, s, 3.0, 5 * kSecond).empty());
  EXPECT_EQ(monitor.flags_raised(), 0);

  // The third consecutive bad window confirms the straggler.
  std::vector<ServerId> flagged = FeedWindow(monitor, s, 3.0, 6 * kSecond);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], s);
  EXPECT_EQ(monitor.flags_raised(), 1);
  EXPECT_EQ(monitor.first_flag_time(), 6 * kSecond);
  // Already flagged: staying bad raises no duplicate flag.
  EXPECT_TRUE(FeedWindow(monitor, s, 3.0, 7 * kSecond).empty());
  EXPECT_EQ(monitor.flags_raised(), 1);
}

TEST(HealthMonitorTest, EwmaSmoothsTransientSpikes) {
  Cluster cluster(EvalClusterConfig());
  HealthConfig config = TestConfig();
  config.ewma_alpha = 0.2;  // heavy smoothing
  config.hysteresis_windows = 1;
  HealthMonitor monitor(&cluster, config);
  const ServerId s = 0;
  // A long healthy history pins the EWMA near 1.0; one wild window (a batch spike,
  // not a sick server) cannot drag the smoothed ratio over the threshold.
  for (int w = 0; w < 20; ++w) {
    EXPECT_TRUE(FeedWindow(monitor, s, 1.0, w * kSecond).empty());
  }
  EXPECT_TRUE(FeedWindow(monitor, s, 2.0, 21 * kSecond).empty());
  EXPECT_NEAR(monitor.SmoothedRatio(s), 1.2, 1e-9);
  EXPECT_EQ(monitor.flags_raised(), 0);
}

TEST(HealthMonitorTest, QuarantineProbesGroundTruthAndReadmits) {
  Cluster cluster(EvalClusterConfig());
  HealthMonitor monitor(&cluster, TestConfig());
  const ServerId s = 2;
  cluster.SetServerPerf(s, 0.4);

  TimeNs now = 0;
  std::vector<ServerId> flagged;
  for (int w = 0; w < 3; ++w) {
    now += kSecond;
    flagged = FeedWindow(monitor, s, 2.5, now);
  }
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_TRUE(monitor.IsQuarantined(s));
  EXPECT_EQ(monitor.quarantine_count(), 1);
  EXPECT_EQ(monitor.quarantined_now(), 1);
  EXPECT_EQ(monitor.quarantined_since(s), now);
  EXPECT_EQ(monitor.exclusion_mask()[static_cast<size_t>(s)], 1);

  // While the ground truth stays degraded, probes never accumulate toward
  // readmission no matter how long the quarantine lasts.
  for (int w = 0; w < 50; ++w) {
    now += kSecond;
    monitor.EndWindow(now);
  }
  EXPECT_TRUE(monitor.IsQuarantined(s));
  EXPECT_EQ(monitor.readmissions(), 0);

  // Hardware heals -> two clean probes (reprobe_interval apart) readmit, clear both
  // masks, and reset the EWMA so stale degraded history cannot haunt the server.
  cluster.SetServerPerf(s, 1.0);
  for (int w = 0; w < 25; ++w) {
    now += kSecond;
    monitor.EndWindow(now);
  }
  EXPECT_FALSE(monitor.IsQuarantined(s));
  EXPECT_EQ(monitor.readmissions(), 1);
  EXPECT_EQ(monitor.quarantined_now(), 0);
  EXPECT_EQ(monitor.exclusion_mask()[static_cast<size_t>(s)], 0);
  EXPECT_EQ(monitor.SmoothedRatio(s), 1.0);

  // A readmitted server is a first-class citizen again: it can re-flag from scratch
  // (fresh hysteresis), not from its pre-quarantine streak.
  cluster.SetServerPerf(s, 0.4);
  now += kSecond;
  EXPECT_TRUE(FeedWindow(monitor, s, 2.5, now).empty());
  now += kSecond;
  EXPECT_TRUE(FeedWindow(monitor, s, 2.5, now).empty());
  now += kSecond;
  EXPECT_EQ(FeedWindow(monitor, s, 2.5, now).size(), 1u);
  EXPECT_EQ(monitor.quarantine_count(), 2);
}

TEST(HealthMonitorTest, CapacityGuardCapsTheQuarantineSet) {
  Cluster cluster(EvalClusterConfig());
  HealthConfig config = TestConfig();
  config.max_quarantine_fraction = 0.05;
  HealthMonitor monitor(&cluster, config);
  int gpu_servers = 0;
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    if (!cluster.server(s).gpus.empty()) {
      ++gpu_servers;
    }
  }
  ASSERT_EQ(monitor.quarantine_cap(),
            std::max(1, static_cast<int>(0.05 * gpu_servers)));

  // Degrade far more servers than the cap allows.
  const int sick = monitor.quarantine_cap() + 4;
  TimeNs now = 0;
  for (int w = 0; w < 3; ++w) {
    now += kSecond;
    for (ServerId s = 0; s < sick; ++s) {
      monitor.Observe(s, static_cast<TimeNs>(2.5e6), static_cast<TimeNs>(1e6));
    }
    monitor.EndWindow(now);
  }
  // Everyone is flagged (and excluded from new placements), but only the cap's worth
  // is quarantined — the overflow keeps limping rather than forcing evacuations the
  // healthy remainder cannot absorb.
  EXPECT_EQ(monitor.flags_raised(), sick);
  EXPECT_EQ(monitor.quarantined_now(), monitor.quarantine_cap());
  int excluded = 0;
  for (uint8_t bit : monitor.exclusion_mask()) {
    excluded += bit;
  }
  EXPECT_EQ(excluded, sick);
}

TEST(HealthMonitorTest, DetectOnlyModeNeverQuarantinesOrExcludes) {
  Cluster cluster(EvalClusterConfig());
  HealthConfig config = TestConfig();
  config.mitigate = false;
  HealthMonitor monitor(&cluster, config);
  TimeNs now = 0;
  std::vector<ServerId> flagged;
  for (int w = 0; w < 5; ++w) {
    now += kSecond;
    flagged = FeedWindow(monitor, 0, 3.0, now);
  }
  // Flags (and thus detection latency) are still tracked for the ignore baseline,
  // but nothing is quarantined and the placer mask stays all-zeros.
  EXPECT_EQ(monitor.flags_raised(), 1);
  EXPECT_GE(monitor.first_flag_time(), 0);
  EXPECT_EQ(monitor.quarantine_count(), 0);
  for (uint8_t bit : monitor.exclusion_mask()) {
    EXPECT_EQ(bit, 0);
  }
}

TEST(HealthMonitorTest, SelfRecoveryClearsFlagAndExclusion) {
  Cluster cluster(EvalClusterConfig());
  HealthConfig config = TestConfig();
  config.quarantine_strikes = 2;  // first flag excludes but does not yet quarantine
  HealthMonitor monitor(&cluster, config);
  const ServerId s = 1;
  TimeNs now = 0;
  for (int w = 0; w < 3; ++w) {
    now += kSecond;
    FeedWindow(monitor, s, 3.0, now);
  }
  EXPECT_EQ(monitor.flags_raised(), 1);
  EXPECT_FALSE(monitor.IsQuarantined(s));
  EXPECT_EQ(monitor.exclusion_mask()[static_cast<size_t>(s)], 1);

  // The throttle clears on its own (EWMA decays below threshold): the flag drops and
  // the server re-enters the placement pool without any probe machinery.
  for (int w = 0; w < 10; ++w) {
    now += kSecond;
    FeedWindow(monitor, s, 1.0, now);
  }
  EXPECT_EQ(monitor.exclusion_mask()[static_cast<size_t>(s)], 0);
  EXPECT_EQ(monitor.quarantine_count(), 0);
}

TEST(HealthMonitorTest, IdleWindowsHoldHysteresisState) {
  Cluster cluster(EvalClusterConfig());
  HealthMonitor monitor(&cluster, TestConfig());
  const ServerId s = 0;
  EXPECT_TRUE(FeedWindow(monitor, s, 3.0, 1 * kSecond).empty());
  EXPECT_TRUE(FeedWindow(monitor, s, 3.0, 2 * kSecond).empty());
  // Two idle windows (no samples at all): absence of data is not evidence of
  // health, so the bad streak holds instead of resetting.
  EXPECT_TRUE(monitor.EndWindow(3 * kSecond).empty());
  EXPECT_TRUE(monitor.EndWindow(4 * kSecond).empty());
  std::vector<ServerId> flagged = FeedWindow(monitor, s, 3.0, 5 * kSecond);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], s);
}

}  // namespace
}  // namespace flexpipe
