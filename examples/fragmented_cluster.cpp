// Fragmented-cluster walkthrough: why tensor parallelism fails on serverless clusters
// (§3.1) and how FlexPipe's topology-aware placement navigates the same fragmentation.
#include <cstdio>

#include "src/cluster/fragmentation.h"
#include "src/core/allocation.h"
#include "src/core/experiment.h"

using namespace flexpipe;

int main() {
  ExperimentEnvConfig env_config;
  env_config.models = {Opt66B()};
  env_config.fragmentation = ProfileClusterC2();
  env_config.seed = 9;
  ExperimentEnv env(env_config);
  Cluster& cluster = env.cluster();

  std::printf("cluster: %d servers, %d GPUs, mean mem util %.1f%%, subscription %.0f%%\n\n",
              cluster.server_count(), cluster.gpu_count(),
              100.0 * cluster.MeanMemoryUtilization(),
              100.0 * cluster.MeanSubscriptionRate());

  // Tensor parallelism needs co-located GPUs with NVLink-class interconnects.
  auto group = cluster.BestColocatedGroup(GiB(30));
  std::printf("best co-located >=30GiB-free GPU group on one server: %zu GPUs\n", group.size());
  std::printf("=> 4-way tensor parallelism for OPT-66B is %s on this snapshot\n\n",
              group.size() >= 4 ? "feasible" : "INFEASIBLE (the common case, §3.1)");

  // Pipeline stages only need *individual* GPUs; the placer finds them anywhere and
  // keeps consecutive stages topologically close.
  ModelPlacementRegistry registry;
  TopologyAwarePlacer placer(&cluster, &env.network(), &registry, PlacementConfig{});
  for (int stages : {4, 8, 16, 32}) {
    auto gpus = placer.PlaceStages(env.ladder(0).plan(stages), 0, 1.0, nullptr, nullptr);
    if (gpus.empty()) {
      std::printf("%2d-stage pipeline: no placement\n", stages);
      continue;
    }
    int same_rack_hops = 0;
    for (size_t i = 0; i + 1 < gpus.size(); ++i) {
      if (cluster.SameRack(gpus[i], gpus[i + 1])) {
        ++same_rack_hops;
      }
    }
    std::printf("%2d-stage pipeline placed: %zu GPUs, %d/%zu hops stay in-rack\n", stages,
                gpus.size(), same_rack_hops, gpus.size() - 1);
  }

  // Fragmentation is also dynamic: churn shifts the available set continuously.
  std::printf("\nchurn: GPUs with >=15GiB free across 10 re-sampled snapshots:\n  ");
  for (int i = 0; i < 10; ++i) {
    env.fragmentation().ChurnStep(0.3);
    std::printf("%zu ", cluster.GpusWithFreeMemory(GiB(15)).size());
  }
  std::printf("\n(ephemeral availability is why placements must be re-decided at runtime)\n");
  return 0;
}
