// Bursty-serving walkthrough: watch FlexPipe adapt granularity and fleet size live as a
// workload flips between calm and bursty phases (the scenario of the paper's Fig. 9).
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"

using namespace flexpipe;

int main() {
  ExperimentEnvConfig env_config;
  env_config.models = {Opt66B()};
  env_config.seed = 3;
  ExperimentEnv env(env_config);

  FlexPipeConfig config;
  config.initial_stages = env.ladder(0).coarsest();
  config.target_peak_rps = 30.0;
  config.default_slo = 10 * kSecond;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  // Three phases: calm (CV 0.5) -> burst storm (CV 6) -> calm again.
  WorkloadGenerator gen;
  Rng rng(11);
  auto calm1 = gen.GenerateWithCv(rng, 20.0, 0.5, 2 * kMinute);
  auto storm = gen.GenerateWithCv(rng, 30.0, 6.0, 2 * kMinute);
  for (auto& s : storm) {
    s.arrival += 2 * kMinute;
  }
  auto calm2 = gen.GenerateWithCv(rng, 20.0, 0.5, 2 * kMinute);
  for (auto& s : calm2) {
    s.arrival += 4 * kMinute;
  }
  auto specs = MergeWorkloads({calm1, storm, calm2});

  // A probe prints the controller's view every 30 simulated seconds.
  std::printf("time   phase   cv_obs  stages  instances  queue  refactors\n");
  PeriodicTask probe(&env.sim(), 30 * kSecond, [&] {
    double t = ToSeconds(env.sim().now());
    const char* phase = t < 150 ? "warm/calm" : (t < 270 ? "storm" : "calm");
    int instances = 0;
    for (const auto* inst : system.router().instances()) {
      if (inst->state() == InstanceState::kActive) {
        ++instances;
      }
    }
    std::printf("%5.0fs  %-7s %5.2f   %4d    %6d   %5d  %6lld\n", t, phase,
                system.cv_monitor().Cv(), system.current_stages(), instances,
                system.router().queue_length(),
                static_cast<long long>(system.refactor_count()));
  });

  std::vector<Request> storage;
  RunOptions options;
  options.warmup = 60 * kSecond;
  options.drain_grace = 60 * kSecond;
  RunReport report = RunWorkload(env, system, specs, storage, options);
  probe.Cancel();

  std::printf("\ndone: %lld completed, mean %.2fs, P99 %.2fs, KV migrated %.1f MiB\n",
              static_cast<long long>(system.metrics().completed()),
              system.metrics().MeanLatencySec(), system.metrics().LatencyPercentileSec(99),
              ToMiB(system.kv_migrated_bytes()));
  (void)report;
  return 0;
}
