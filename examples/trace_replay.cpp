// Trace replay: synthesize an Azure-Functions-like day, replay a compressed version
// against FlexPipe and a static baseline, and compare SLO attainment and GPU cost.
#include <cstdio>

#include "src/baselines/alpaserve.h"
#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"
#include "src/trace/azure_trace.h"
#include "src/trace/cv_analysis.h"

using namespace flexpipe;

namespace {

std::vector<RequestSpec> CompressedDay() {
  AzureTraceSynthesizer::Config config;
  config.days = 1;
  config.base_rate = 14.0;
  config.seed = 123;
  AzureTraceSynthesizer synth(config);
  auto raw = synth.GenerateArrivals();
  // Compress 24h into 10 simulated minutes, thinning to keep volume manageable.
  const double compress = 600.0 / 86400.0;
  std::vector<TimeNs> ts;
  for (size_t i = 0; i < raw.size(); i += 6) {
    ts.push_back(static_cast<TimeNs>(static_cast<double>(raw[i]) * compress));
  }
  TraceReplayArrivals replay(ts);
  WorkloadGenerator::Config wconfig;
  wconfig.slo = 10 * kSecond;
  WorkloadGenerator gen(wconfig);
  Rng rng(5);
  return gen.Generate(replay, rng, ts.size());
}

}  // namespace

int main() {
  auto specs = CompressedDay();
  std::vector<TimeNs> arrivals;
  for (const auto& s : specs) {
    arrivals.push_back(s.arrival);
  }
  std::printf("trace: %zu requests over ~10 min; 15s-window count CV %.2f, 2.5min-window %.2f\n\n",
              specs.size(),
              WindowedCountCv(arrivals, 15 * kSecond, 0, 10 * kMinute),
              WindowedCountCv(arrivals, 150 * kSecond, 0, 10 * kMinute));

  RunOptions options;
  options.warmup = 90 * kSecond;
  options.drain_grace = 60 * kSecond;

  // FlexPipe.
  {
    ExperimentEnvConfig env_config;
    env_config.models = {Opt66B()};
    ExperimentEnv env(env_config);
    FlexPipeConfig config;
    config.initial_stages = env.ladder(0).coarsest();
    config.target_peak_rps = 30.0;
    config.default_slo = 10 * kSecond;
    FlexPipeSystem system(env.Context(), &env.ladder(0), config);
    std::vector<Request> storage;
    RunReport report = RunWorkload(env, system, specs, storage, options);
    std::printf("FlexPipe : goodput %.1f%%  meanRT %.2fs  P99 %.2fs  peakGPUs %d  util %.1f%%\n",
                100 * system.metrics().GoodputRate(report.submitted),
                system.metrics().MeanLatencySec(), system.metrics().LatencyPercentileSec(99),
                system.peak_reserved_gpus(),
                100 * system.MeanGpuUtilization(report.ran_until));
  }
  // Static peak-provisioned baseline.
  {
    ExperimentEnvConfig env_config;
    env_config.models = {Opt66B()};
    ExperimentEnv env(env_config);
    AlpaServeConfig config;
    config.stages = env.ladder(0).coarsest();
    config.target_peak_rps = 30.0;
    config.default_slo = 10 * kSecond;
    AlpaServeSystem system(env.Context(), &env.ladder(0), config);
    std::vector<Request> storage;
    RunReport report = RunWorkload(env, system, specs, storage, options);
    std::printf("AlpaServe: goodput %.1f%%  meanRT %.2fs  P99 %.2fs  peakGPUs %d  util %.1f%%\n",
                100 * system.metrics().GoodputRate(report.submitted),
                system.metrics().MeanLatencySec(), system.metrics().LatencyPercentileSec(99),
                system.peak_reserved_gpus(),
                100 * system.MeanGpuUtilization(report.ran_until));
  }
  return 0;
}
