// Quickstart: partition a model, deploy FlexPipe on the simulated cluster, serve a
// small workload, and print what happened.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"

using namespace flexpipe;

int main() {
  // 1. An experiment environment: 42-server/82-GPU cluster with production-calibrated
  //    fragmentation, network fabric, cost model, and a granularity ladder for the model.
  ExperimentEnvConfig env_config;
  env_config.models = {Llama2_7B()};
  env_config.seed = 1;
  ExperimentEnv env(env_config);

  const GranularityLadder& ladder = env.ladder(0);
  std::printf("granularity ladder for %s:\n", ladder.spec.name.c_str());
  for (int g : ladder.granularities) {
    std::printf("  %s\n", ladder.plan(g).Describe().c_str());
  }

  // 2. A FlexPipe deployment: starts at the coarsest feasible granularity with a 30%
  //    always-on reserve and adapts from there.
  FlexPipeConfig config;
  config.initial_stages = ladder.coarsest();
  config.target_peak_rps = 10.0;
  config.default_slo = 10 * kSecond;
  FlexPipeSystem system(env.Context(), &ladder, config);

  // 3. A bursty workload: 8 req/s with CV 3 inter-arrivals for two simulated minutes.
  WorkloadGenerator gen;
  Rng rng(7);
  std::vector<RequestSpec> specs = gen.GenerateWithCv(rng, 8.0, 3.0, 2 * kMinute);

  // 4. Serve it. The run shifts arrivals past the initial parameter load (warmup).
  std::vector<Request> storage;
  RunOptions options;
  options.warmup = 30 * kSecond;
  options.drain_grace = 60 * kSecond;
  RunReport report = RunWorkload(env, system, specs, storage, options);

  // 5. Results.
  const MetricsCollector& m = system.metrics();
  std::printf("\nserved %lld/%lld requests | mean latency %.2fs | P99 %.2fs | goodput %.1f%%\n",
              static_cast<long long>(m.completed()), static_cast<long long>(report.submitted),
              m.MeanLatencySec(), m.LatencyPercentileSec(99),
              100.0 * m.GoodputRate(report.submitted));
  std::printf("refactors: %lld (last cutover pause %.2f ms) | warm loads %lld / cold %lld\n",
              static_cast<long long>(system.refactor_count()),
              ToMillis(system.last_refactor_pause()),
              static_cast<long long>(system.warm_loads()),
              static_cast<long long>(system.cold_loads()));
  std::printf("steady-state granularity: %d stages | peak GPUs %d | GPU utilization %.1f%%\n",
              system.current_stages(), system.peak_reserved_gpus(),
              100.0 * system.MeanGpuUtilization(report.ran_until));
  return 0;
}
